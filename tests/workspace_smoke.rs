//! Workspace-level smoke test: the benchmark manifest itself must be
//! internally consistent. If a future PR breaks suite construction or drops
//! a golden program for any query/backend pair, this fails fast — before
//! the slower integration and reproduction suites run.

use nemo_bench::{golden_of, BenchmarkSuite, SuiteConfig};
use nemo_core::{Application, Backend};

#[test]
fn small_suite_builds_and_goldens_resolve_for_every_pair() {
    let suite = BenchmarkSuite::build(&SuiteConfig::small());

    assert!(
        !suite.queries.is_empty(),
        "suite built with no queries at all"
    );
    for app in Application::ALL {
        assert!(
            !suite.queries_for(app).is_empty(),
            "no queries prepared for application {app:?}"
        );
    }

    for query in &suite.queries {
        for backend in Backend::ALL {
            // `golden_of` panics on a missing entry; resolving every pair
            // proves the manifest is complete.
            let _ = golden_of(query, backend);
        }
        for backend in Backend::CODEGEN {
            assert!(
                query.spec.golden_program(backend).is_some(),
                "query {} has no golden program for {backend:?}",
                query.spec.id
            );
        }
        assert!(
            !query.direct_answer.is_empty(),
            "query {} has an empty direct answer",
            query.spec.id
        );
    }
}
