//! Cost and scalability analysis (the paper's Figure 4): compare the
//! per-query dollar cost of pasting the whole graph into the prompt
//! (strawman) against generating code, as the graph grows.
//!
//! Run with: `cargo run --example cost_analysis`

use nemo_bench::runner::{
    cost_comparison, scalability_sweep, strawman_prompt_tokens, DEFAULT_SEED,
};
use nemo_core::llm::profiles;

fn main() {
    let profile = profiles::gpt4();

    let at_80 = cost_comparison(&profile, 80, DEFAULT_SEED);
    println!("Per-query cost at 80 nodes and edges (GPT-4 pricing):");
    println!("  strawman mean: ${:.4}", at_80.strawman_mean());
    println!("  code-gen mean: ${:.4}", at_80.codegen_mean());
    println!(
        "  strawman / code-gen ratio: {:.1}x\n",
        at_80.strawman_mean() / at_80.codegen_mean()
    );

    println!("Cost versus graph size:");
    println!(
        "{:>12} {:>14} {:>14} {:>12} {:>10}",
        "nodes+edges", "strawman $", "codegen $", "prompt tok", "status"
    );
    let sizes = [20, 40, 60, 80, 100, 150, 200, 300, 400];
    for point in scalability_sweep(&profile, &sizes, DEFAULT_SEED) {
        println!(
            "{:>12} {:>14.4} {:>14.4} {:>12} {:>10}",
            point.graph_size,
            point.strawman_mean,
            point.codegen_mean,
            strawman_prompt_tokens(point.graph_size / 2),
            if point.strawman_over_window {
                "OVER LIMIT"
            } else {
                "ok"
            }
        );
    }
    println!("\nThe code-generation cost stays flat (<$0.2 per query) while the strawman grows with the graph and eventually exceeds the model's token window, as in Figure 4.");
}
