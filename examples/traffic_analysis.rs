//! Network traffic analysis end to end: run every traffic-analysis query
//! with every backend under one model and print the per-backend accuracy —
//! a single row of the paper's Table 2 plus its Table-3 breakdown.
//!
//! Run with: `cargo run --example traffic_analysis`

use nemo_bench::runner::{accuracy, run_accuracy_benchmark_for, DEFAULT_SEED};
use nemo_bench::{BenchmarkSuite, SuiteConfig};
use nemo_core::llm::profiles;
use nemo_core::{Application, Backend, Complexity};

fn main() {
    let suite = BenchmarkSuite::build(&SuiteConfig::small());
    let profile = profiles::gpt4();
    println!(
        "Running all 24 traffic-analysis queries with {}...\n",
        profile.name
    );
    let logger = run_accuracy_benchmark_for(&suite, std::slice::from_ref(&profile), DEFAULT_SEED);

    println!("Accuracy by backend (traffic analysis):");
    for backend in Backend::ALL {
        let overall = accuracy(
            &logger,
            &suite,
            profile.name,
            Application::TrafficAnalysis,
            backend,
            None,
        );
        let by_level: Vec<String> = Complexity::ALL
            .iter()
            .map(|&c| {
                format!(
                    "{}={:.2}",
                    c.letter(),
                    accuracy(
                        &logger,
                        &suite,
                        profile.name,
                        Application::TrafficAnalysis,
                        backend,
                        Some(c)
                    )
                )
            })
            .collect();
        println!(
            "  {:<9} overall {:.2}   ({})",
            backend.name(),
            overall,
            by_level.join(", ")
        );
    }

    println!("\nFailed NetworkX runs and their error types:");
    for record in logger.records() {
        if record.backend == Backend::NetworkX && !record.passed() {
            println!("  {} -> {}", record.query, record.verdict);
        }
    }
}
