//! Quickstart: ask one natural-language question about a synthetic network
//! and watch the whole pipeline run — prompt generation, (simulated) LLM
//! code generation, sandboxed execution and evaluation against the golden
//! answer.
//!
//! Run with: `cargo run --example quickstart`

use nemo_bench::{golden_of, BenchmarkSuite, SuiteConfig};
use nemo_core::llm::profiles;
use nemo_core::{Application, Backend, NetworkManager, SimulatedLlm};

fn main() {
    // Build the benchmark suite: the 80-node communication graph, the MALT
    // topology, every query and its golden answers.
    let suite = BenchmarkSuite::build(&SuiteConfig::small());

    // Pick the paper's headline configuration: GPT-4 with the NetworkX
    // (property graph) backend.
    let mut llm = SimulatedLlm::new(profiles::gpt4(), suite.knowledge(), 2023);
    let mut manager = NetworkManager::new(&suite.traffic_app, &mut llm);

    // The operator's question (one of the paper's Table-1 examples).
    let query = suite
        .queries_for(Application::TrafficAnalysis)
        .into_iter()
        .find(|q| q.spec.text.contains("unique color"))
        .expect("the coloring query is part of the suite");

    println!("Operator query:\n  {}\n", query.spec.text);

    let record = manager.run_query(
        Backend::NetworkX,
        query.spec.text,
        golden_of(query, Backend::NetworkX),
    );

    println!(
        "Generated program:\n{}\n",
        record.code.as_deref().unwrap_or("(no code)")
    );
    println!("Verdict: {}", record.verdict);
    println!(
        "Cost: {} prompt tokens + {} completion tokens = ${:.4}",
        record.cost.prompt_tokens, record.cost.completion_tokens, record.cost.dollars
    );
}
