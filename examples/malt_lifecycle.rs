//! Network lifecycle management over the MALT topology: inspect the
//! generated topology, then run the nine lifecycle queries under Bard with
//! and without the pass@5 / self-debug techniques (the paper's Table 6).
//!
//! Run with: `cargo run --example malt_lifecycle`

use malt::EntityKind;
use nemo_bench::runner::{run_case_study, DEFAULT_SEED};
use nemo_bench::{BenchmarkSuite, SuiteConfig};
use nemo_core::llm::profiles;

fn main() {
    let suite = BenchmarkSuite::build(&SuiteConfig::small());
    let model = suite.malt_app.model();

    println!("MALT topology:");
    println!("  entities:      {}", model.entity_count());
    println!("  relationships: {}", model.relationship_count());
    for kind in EntityKind::ALL {
        println!(
            "  {:<14} {}",
            kind.name(),
            model.entities_of_kind(kind).len()
        );
    }
    let chassis = model.entities_of_kind(EntityKind::Chassis);
    let largest = chassis
        .iter()
        .max_by(|a, b| {
            a.capacity()
                .partial_cmp(&b.capacity())
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("at least one chassis");
    println!(
        "  largest chassis: {} ({} Gbps)\n",
        largest.name,
        largest.capacity().unwrap_or(0.0)
    );

    println!("Lifecycle-management case study (Bard, NetworkX backend):");
    let result = run_case_study(&suite, &profiles::bard(), 5, DEFAULT_SEED);
    println!("  Pass@1     accuracy: {:.2}", result.pass_at_1);
    println!("  Pass@{}     accuracy: {:.2}", result.k, result.pass_at_k);
    println!("  Self-debug accuracy: {:.2}", result.self_debug);
    println!(
        "\nBoth complementary synthesis techniques recover failures, as in the paper's Table 6."
    );
}
